"""single-writer-ledger: CommStats/RebuildStats counters mutate only on
coordinator paths.

PR 8's ledger discipline: the coordinator folds per-worker/per-shard
contributions *after* the join — worker lambdas accumulate into private
slots and never touch the shared counters. A ledger counter mutated
inside a parallel region is either a data race or (if atomic) an
ordering-dependent count that breaks per-cell determinism.

Structurally: a mutation (`+=`, `-=`, `++`, `--`, `=`, `.fetch_add`) of a
manifest-listed ledger field (``ledger_fields``) is a finding when it
sits inside the balanced argument extent of a parallel-region call
(``parallel_for_threads``, ``parallel_reduce_threads``, pool
``.parallel_for`` / ``.submit``, ``DedicatedThread`` launch) — directly,
or one call level down (a helper that mutates a ledger field, called from
inside the region, is flagged at the call site).

The one sanctioned exception is the overlap rebuild's dedicated thread
(replay_core.hpp), where the rebuild-side counters are owned by the
worker until the join publishes them — that site carries a reviewed
``bmf-analyzer: allow(single-writer-ledger)`` suppression.
"""

from __future__ import annotations

import re

import source_model as sm

PARALLEL_RES = (
    re.compile(r"\bparallel_(?:for|reduce)_threads\s*\("),
    re.compile(r"(?:\.|->)\s*(?:parallel_for|submit|try_submit)\s*\("),
    re.compile(rf"\bDedicatedThread\s+{sm.IDENT}\s*\(|\bDedicatedThread\s*\("),
)
CALL_RE = re.compile(rf"\b({sm.IDENT})\s*\(")


def _mutation_re(fields: list[str]) -> re.Pattern[str]:
    alt = "|".join(re.escape(f) for f in fields)
    return re.compile(
        rf"(?:\b({alt})\s*(?:\+=|-=|\+\+|--|=(?!=))"
        rf"|\b({alt})\s*\.\s*fetch_(?:add|sub)\s*\("
        rf"|(?:\+\+|--)\s*(?:{sm.IDENT}\s*(?:\.|->)\s*)*({alt})\b)"
    )


def _parallel_regions(sf: sm.SourceFile) -> list[tuple[int, int]]:
    regions: list[tuple[int, int]] = []
    for pattern in PARALLEL_RES:
        for m in pattern.finditer(sf.text):
            open_off = sf.text.find("(", m.end() - 1)
            if open_off < 0:
                continue
            _args, close = sm.call_argument_text(sf.text, open_off)
            regions.append((open_off, close))
    return regions


def check(files: list[sm.SourceFile], manifest: dict) -> list[sm.Finding]:
    fields = manifest.get("ledger_fields", [])
    if not fields:
        return []
    mut_re = _mutation_re(fields)

    # Pass 1: which functions mutate a ledger field anywhere in their body.
    mutators: dict[str, str] = {}  # function name -> first field it mutates
    for sf in files:
        for fn in sf.functions:
            m = mut_re.search(sf.body(fn))
            if m:
                field = m.group(1) or m.group(2) or m.group(3)
                mutators.setdefault(fn.name, field)

    findings: list[sm.Finding] = []
    for sf in files:
        regions = _parallel_regions(sf)
        if not regions:
            continue

        def in_region(off: int) -> bool:
            return any(a < off < b for a, b in regions)

        for m in mut_re.finditer(sf.text):
            if not in_region(m.start()):
                continue
            field = m.group(1) or m.group(2) or m.group(3)
            idx = sf.line_of(m.start()) - 1
            sm.report(
                findings,
                sf,
                idx,
                "single-writer-ledger",
                f"ledger counter '{field}' mutated inside a parallel "
                "region; accumulate into a per-worker slot and fold on "
                "the coordinator after the join",
            )
        for m in CALL_RE.finditer(sf.text):
            name = m.group(1)
            if name not in mutators or name in sm.NON_FUNCTION_KEYWORDS:
                continue
            if not in_region(m.start()):
                continue
            idx = sf.line_of(m.start()) - 1
            sm.report(
                findings,
                sf,
                idx,
                "single-writer-ledger",
                f"call to '{name}' inside a parallel region mutates ledger "
                f"counter '{mutators[name]}'; fold on the coordinator "
                "after the join",
            )
    return findings
