"""bmf-analyzer: whole-tree AST/dataflow determinism analysis for bmf.

The package complements tools/determinism_lint.py (fast per-file regex
checks, canonical in ctest) with deeper, program-level rules:

  * ``unordered-order-taint`` — dataflow from hash-order sources
    (unordered_{map,set} iteration, pointer-comparison sorts, std::hash)
    to committed-state sinks, through locals and one level of helper calls.
  * ``lock-order`` — the global bmf::Mutex acquisition graph must stay
    acyclic and every edge must be declared in lock_order_manifest.json.
  * ``relaxed-audit`` — every memory_order_relaxed access carries an
    adjacent ``// relaxed-ok: <reason>`` marker; release stores to
    ``latest_`` / ``published_epoch_`` keep the publication-order pairing
    (the one shared implementation, also used by the determinism lint).
  * ``single-writer-ledger`` — CommStats/RebuildStats counters are written
    only on coordinator paths, never inside parallel_for_threads lambdas.

Entry point: ``python3 tools/analyzer/bmf_analyzer.py [paths...]``.
Stdlib-only; when the libclang Python bindings are importable the taint
rule's unordered-iteration sources are additionally confirmed against the
AST (same optional upgrade as the determinism lint).
"""
