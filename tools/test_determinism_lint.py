#!/usr/bin/env python3
"""Fixture tests for tools/determinism_lint.py (wired into ctest).

Every known-bad fixture under tools/lint_fixtures/bad/ must produce at least
one finding of the rule named by its expectations entry; every good twin under
tools/lint_fixtures/good/ must come back completely clean. A fixture on disk
that the expectations table does not mention is a test failure too — the suite
must grow with the fixtures.
"""

import os
import sys
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, TOOLS_DIR)

import determinism_lint  # noqa: E402

FIXTURES = os.path.join(TOOLS_DIR, "lint_fixtures")

# fixture path relative to lint_fixtures/bad -> set of rules it must trip.
BAD_EXPECTATIONS = {
    "src/core/participation_fanout.cpp": {"ungated-fanout"},
    "src/core/unordered_commit.cpp": {"unordered-iteration"},
    "src/core/raw_random.cpp": {"raw-randomness"},
    "src/dynamic/bare_thread.cpp": {"bare-thread"},
    "src/dynamic/stale_suppression.cpp": {"stale-suppression"},
    "src/graph/omp_pragma.cpp": {"raw-openmp"},
    "src/graph/ungated_fanout.cpp": {"ungated-fanout"},
    "src/service/publication.cpp": {"publication-order"},
}


def lint(path):
    return determinism_lint.lint_file(path, use_libclang="auto")


def fixture_files(kind):
    root = os.path.join(FIXTURES, kind)
    out = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(determinism_lint.CPP_EXTENSIONS):
                out.append(
                    os.path.relpath(os.path.join(dirpath, name), root)
                )
    return sorted(out)


class BadFixtures(unittest.TestCase):
    def test_every_bad_fixture_is_expected(self):
        self.assertEqual(fixture_files("bad"), sorted(BAD_EXPECTATIONS))

    def test_bad_fixtures_fail_with_the_expected_rule(self):
        for rel, want_rules in BAD_EXPECTATIONS.items():
            with self.subTest(fixture=rel):
                findings = lint(os.path.join(FIXTURES, "bad", rel))
                got_rules = {f.rule for f in findings}
                self.assertTrue(
                    want_rules <= got_rules,
                    f"{rel}: wanted {sorted(want_rules)}, got "
                    f"{sorted(got_rules)} from {[f.render() for f in findings]}",
                )

    def test_raw_random_flags_every_entropy_source(self):
        findings = lint(
            os.path.join(FIXTURES, "bad", "src/core/raw_random.cpp")
        )
        self.assertGreaterEqual(
            len([f for f in findings if f.rule == "raw-randomness"]), 3
        )

    def test_raw_openmp_flags_the_pragma_line_only(self):
        # Exactly one finding, on the pragma line — the loop it decorates is
        # ordinary code and must not be swept up in the report.
        findings = lint(
            os.path.join(FIXTURES, "bad", "src/graph/omp_pragma.cpp")
        )
        omp = [f for f in findings if f.rule == "raw-openmp"]
        self.assertEqual(1, len(omp), [f.render() for f in findings])
        self.assertIn("gated_threads", omp[0].message)


class GoodFixtures(unittest.TestCase):
    def test_good_fixtures_are_clean(self):
        for rel in fixture_files("good"):
            with self.subTest(fixture=rel):
                findings = lint(os.path.join(FIXTURES, "good", rel))
                self.assertEqual(
                    [], [f.render() for f in findings],
                    f"{rel} should lint clean",
                )


class SuppressionPolicy(unittest.TestCase):
    def test_allow_without_reason_is_rejected(self):
        # The allow regex demands `-- <reason>`; a bare allow() keeps the
        # finding alive.
        self.assertIsNone(
            determinism_lint.ALLOW_RE.search(
                "// determinism-lint: allow(bare-thread)"
            )
        )

    def test_allow_with_reason_names_one_rule(self):
        m = determinism_lint.ALLOW_RE.search(
            "// determinism-lint: allow(raw-randomness) -- test-only entropy"
        )
        self.assertIsNotNone(m)
        self.assertEqual("raw-randomness", m.group(1))

    def test_stale_suppression_fixture_flags_all_three_rots(self):
        findings = lint(
            os.path.join(FIXTURES, "bad", "src/dynamic/stale_suppression.cpp")
        )
        stale = [f for f in findings if f.rule == "stale-suppression"]
        self.assertEqual(3, len(stale), [f.render() for f in findings])
        messages = " | ".join(f.message for f in stale)
        self.assertIn("names no known determinism-lint rule", messages)
        self.assertIn("lacks the mandatory ' -- <reason>' tail", messages)
        self.assertIn("bare NOLINT", messages)

    def test_analyzer_rule_names_stay_in_sync(self):
        # The stale-suppression rule validates bmf-analyzer allow() comments
        # against the analyzer's own registry — imported, not copied.
        self.assertIn("unordered-order-taint", determinism_lint.ANALYZER_RULES)
        self.assertIn("single-writer-ledger", determinism_lint.ANALYZER_RULES)


class RealTree(unittest.TestCase):
    def test_src_is_lint_clean(self):
        src = os.path.join(os.path.dirname(TOOLS_DIR), "src")
        findings = []
        for path in determinism_lint.collect_files([src]):
            findings.extend(lint(path))
        self.assertEqual([], [f.render() for f in findings])


if __name__ == "__main__":
    unittest.main()
