#!/usr/bin/env python3
"""Repo-specific determinism lint for the bmf codebase.

The replay core's contract (docs/replay_core.md) is that every engine result
is a pure function of (input stream, config, seed) — bit-identical at any
thread or shard count. That only holds if the code never lets an incidental
source of order or entropy feed committed state. This lint makes the
discipline machine-checkable:

  unordered-iteration   In src/core, src/dynamic, src/graph: no range-for over
                        a std::unordered_{map,set} unless the loop only
                        collects keys that are sorted immediately after (the
                        collect-then-sort idiom) — hash-iteration order is a
                        stdlib implementation detail and must never reach
                        committed state or an order-sensitive consumer.
  bare-thread           No std::thread / std::jthread construction outside
                        src/util and src/service. Fan-out goes through the
                        pool (bmf::parallel_for_threads); the one legitimate
                        dedicated-thread pattern is bmf::DedicatedThread
                        (util/thread_pool.hpp).
  raw-randomness        In src/core, src/dynamic, src/graph: no rand()/
                        srand()/time()/std::random_device — all randomness
                        flows from the seeded bmf::Rng (util/rng.hpp), split
                        serially before any fan-out.
  ungated-fanout        In src/core, src/dynamic, src/graph: the thread-count
                        argument of every parallel_for_threads /
                        parallel_reduce_threads call must come through
                        bmf::gated_threads (directly, via a variable assigned
                        from it, or via a local helper that returns it), or be
                        the literal 1. The gate keeps small inputs serial
                        without changing output — an ungated fan-out is either
                        a perf bug or an unreviewed determinism claim.
  raw-openmp            Everywhere under src/: no `#pragma omp` directives.
                        The repo has exactly one parallelism mechanism — the
                        shared pool behind bmf::parallel_for_threads with its
                        gated_threads size gate — so thread-count bit-identity
                        is governed in one place. An OpenMP pragma is a second
                        scheduler with its own thread count, its own reduction
                        order, and no gate; route the loop through the pool
                        instead (see BitMatrix::multiply).
  publication-order     In src/service: a file that release-stores
                        published_epoch_ must carry the documented
                        publication sequence, marked `publication-order[1]`
                        (snapshot pointer store) before `publication-order[2]`
                        (epoch counter store), each a release store. The SSP
                        refresh proof in matching_service.cpp depends on this
                        pairing; the markers are the comment-level proof
                        obligation this rule checks. The implementation lives
                        in tools/analyzer/shared_rules.py, shared with the
                        bmf-analyzer front end.
  stale-suppression     Everywhere: a `determinism-lint: allow(...)` or
                        `bmf-analyzer: allow(...)` comment must cite a rule
                        its tool actually defines and carry a ` -- reason`
                        tail, and clang-tidy NOLINT markers must name their
                        check(s) — a suppression that outlives its rule (or
                        swallows everything) hides nothing and rots.

Suppression (sparingly, reason mandatory), on the flagged line or the line
above:

    // determinism-lint: allow(<rule>) -- <why this is safe>

Regex analysis is canonical (CI runs it everywhere); when the libclang python
bindings are importable, the unordered-iteration rule is additionally resolved
against the AST (`--use-libclang auto|no|require`), which removes
false positives from comments the regex pass cannot see through and catches
iterations through `auto&` aliases.

Usage:
    python3 tools/determinism_lint.py            # lints src/ from the repo root
    python3 tools/determinism_lint.py path...    # lints the given files/dirs

Exit status 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

_ANALYZER_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "analyzer")
if _ANALYZER_DIR not in sys.path:
    sys.path.insert(0, _ANALYZER_DIR)

import shared_rules  # single home of the publication-order rule  # noqa: E402
import source_model as _analyzer_model  # bmf-analyzer's rule registry  # noqa: E402

CPP_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")

# Directories (path components after a `src` component) each rule applies to.
DETERMINISM_DIRS = {"core", "dynamic", "graph"}
THREAD_EXEMPT_DIRS = {"util", "service"}
SERVICE_DIRS = {"service"}

ALLOW_RE = re.compile(
    r"//\s*determinism-lint:\s*allow\(([a-z-]+)\)\s*--\s*(\S.*)$"
)

RULES = (
    "unordered-iteration",
    "bare-thread",
    "raw-randomness",
    "raw-openmp",
    "ungated-fanout",
    "publication-order",
    "stale-suppression",
)

# Every suppression prefix in the tree and the rule names it may cite. The
# stale-suppression rule fails on an allow() naming a rule neither tool
# knows — a suppression that outlives its rule silently stops meaning
# anything. NOLINT is clang-tidy's marker; we additionally require it to
# name its check(s), since a bare NOLINT swallows every future diagnostic
# on that line.
ANALYZER_RULES = _analyzer_model.RULES
SUPPRESSION_PREFIX_RE = re.compile(
    r"//\s*(determinism-lint|bmf-analyzer):\s*allow\(([^)\n]*)\)(.*)$"
)
BARE_NOLINT_RE = re.compile(r"\bNOLINT(?:NEXTLINE|BEGIN|END)?\b(?!\()")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> list[str]:
    """Blanks out comments and string/char literals, preserving line structure
    so findings keep their line numbers. Newlines inside block comments
    survive."""
    out: list[str] = []
    i, n = 0, len(text)
    buf: list[str] = []
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                buf.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                buf.append("'")
                i += 1
                continue
            buf.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                buf.append("\n")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                buf.append("\n")
            i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
                buf.append(quote)
            elif c == "\n":  # unterminated (raw strings etc.) — resync
                state = "code"
                buf.append("\n")
            i += 1
    return "".join(buf).split("\n")


def subsystem_of(path: str) -> str | None:
    """The path component after the last `src` component, or None."""
    parts = os.path.normpath(path).split(os.sep)
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "src":
            return parts[i + 1]
    return None


def allowed(raw_lines: list[str], line_idx: int, rule: str) -> bool:
    """True if the 0-based line or the one above carries a matching allow
    comment (with a non-empty reason — enforced by the regex)."""
    for idx in (line_idx, line_idx - 1):
        if 0 <= idx < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[idx])
            if m and m.group(1) == rule:
                return True
    return False


def first_argument(lines: list[str], line_idx: int, open_col: int) -> str:
    """Extracts the first argument of a call whose '(' is at
    lines[line_idx][open_col], balancing nested parens/brackets across
    lines."""
    depth = 0
    arg: list[str] = []
    row, col = line_idx, open_col
    while row < len(lines):
        line = lines[row]
        while col < len(line):
            c = line[col]
            if c in "([{":
                depth += 1
                if depth > 1:
                    arg.append(c)
            elif c in ")]}":
                depth -= 1
                if depth == 0:
                    return "".join(arg).strip()
                arg.append(c)
            elif c == "," and depth == 1:
                return "".join(arg).strip()
            elif depth >= 1:
                arg.append(c)
            col += 1
        arg.append(" ")
        row += 1
        col = 0
    return "".join(arg).strip()


IDENT = r"[A-Za-z_]\w*"

UNORDERED_DECL_RE = re.compile(
    rf"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*(?:&\s*)?"
    rf"({IDENT})\s*[;({{=]"
)
RANGE_FOR_RE = re.compile(rf"for\s*\(.*?:\s*(\*?\s*{IDENT}(?:\.{IDENT}\(\))?)\s*\)")
THREAD_CTOR_RE = re.compile(rf"std::j?thread\s+{IDENT}\s*[({{]|std::j?thread\s*[({{]")
RAW_RANDOM_RE = re.compile(
    r"(?<![\w:])(?:s?rand\s*\(|time\s*\(\s*(?:NULL|nullptr|0)?\s*\)|"
    r"std::random_device)"
)
OMP_PRAGMA_RE = re.compile(r"#\s*pragma\s+omp\b")
FANOUT_RE = re.compile(r"\b(parallel_for_threads|parallel_reduce_threads)\s*\(")
GATED_ASSIGN_RE = re.compile(rf"\b(?:int\s+)?(?:const\s+)?(?:int\s+)?({IDENT})\s*=\s*({IDENT})\s*\(")
GATED_RETURN_RE = re.compile(rf"return\s+({IDENT})\s*\(")
FUNC_DEF_RE = re.compile(rf"^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+)?int\s+({IDENT})\s*\(")
SORT_RE = re.compile(r"\b(?:std::)?(?:stable_)?sort\s*\(")


def gated_names(lines: list[str]) -> tuple[set[str], set[str]]:
    """Fixpoint over a file: functions that (transitively) return
    gated_threads(...), and variables assigned from them. Assignments and
    returns are matched over whitespace-joined text so multi-line statements
    resolve."""
    joined = " ".join(lines)
    gated_fns = {"gated_threads"}
    # Map each function name to the set of functions its returns call.
    fn_returns: dict[str, set[str]] = {}
    current_fn: str | None = None
    for line in lines:
        fm = FUNC_DEF_RE.match(line)
        if fm:
            current_fn = fm.group(1)
            fn_returns.setdefault(current_fn, set())
        if current_fn:
            for rm in GATED_RETURN_RE.finditer(line):
                fn_returns[current_fn].add(rm.group(1))
    changed = True
    while changed:
        changed = False
        for fn, calls in fn_returns.items():
            if fn not in gated_fns and calls and all(c in gated_fns for c in calls):
                gated_fns.add(fn)
                changed = True
    gated_vars: set[str] = set()
    changed = True
    while changed:
        changed = False
        for am in GATED_ASSIGN_RE.finditer(joined):
            name, callee = am.group(1), am.group(2)
            if callee in gated_fns and name not in gated_vars:
                gated_vars.add(name)
                changed = True
    return gated_fns, gated_vars


def libclang_unordered_iterations(path: str) -> set[int] | None:
    """AST-resolved 1-based lines of range-fors over unordered containers, or
    None when libclang is unavailable (regex stays canonical)."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        tu = cindex.Index.create().parse(
            path, args=["-std=c++20", "-I", os.path.join(repo_root(), "src")]
        )
    except cindex.TranslationUnitLoadError:
        return None
    hits: set[int] = set()

    def visit(node):
        if node.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
            for child in node.get_children():
                spelling = child.type.spelling
                if "unordered_map" in spelling or "unordered_set" in spelling:
                    if node.location.file and node.location.file.name == path:
                        hits.add(node.location.line)
                break
        for child in node.get_children():
            visit(child)

    visit(tu.cursor)
    return hits


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def lint_file(path: str, use_libclang: str) -> list[Finding]:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.split("\n")
    lines = strip_comments_and_strings(text)
    sub = subsystem_of(path)
    findings: list[Finding] = []

    def report(idx: int, rule: str, message: str) -> None:
        if not allowed(raw_lines, idx, rule):
            findings.append(Finding(path, idx + 1, rule, message))

    in_determinism_scope = sub in DETERMINISM_DIRS

    # ---- unordered-iteration -------------------------------------------------
    if in_determinism_scope:
        unordered_vars = {
            m.group(1) for line in lines for m in UNORDERED_DECL_RE.finditer(line)
        }
        ast_lines = (
            libclang_unordered_iterations(path) if use_libclang != "no" else None
        )
        if use_libclang == "require" and ast_lines is None:
            raise RuntimeError("libclang requested but not importable")
        for idx, line in enumerate(lines):
            m = RANGE_FOR_RE.search(line)
            hit = False
            if ast_lines is not None:
                hit = (idx + 1) in ast_lines
            elif m:
                target = m.group(1).lstrip("*").strip().split(".")[0]
                hit = target in unordered_vars
            if not hit:
                continue
            # Collect-then-sort idiom: a sort within the next 8 lines means the
            # loop only gathers keys that are immediately canonicalized.
            window = "\n".join(lines[idx + 1 : idx + 9])
            if SORT_RE.search(window):
                continue
            report(
                idx,
                "unordered-iteration",
                "iteration over an unordered container can feed hash order "
                "into committed state; collect the keys and sort them "
                "(id-order) before use",
            )

    # ---- bare-thread ---------------------------------------------------------
    if sub is not None and sub not in THREAD_EXEMPT_DIRS:
        for idx, line in enumerate(lines):
            if THREAD_CTOR_RE.search(line):
                report(
                    idx,
                    "bare-thread",
                    "std::thread outside util/ and service/; fan out through "
                    "bmf::parallel_for_threads or use bmf::DedicatedThread",
                )

    # ---- raw-randomness ------------------------------------------------------
    if in_determinism_scope:
        for idx, line in enumerate(lines):
            if RAW_RANDOM_RE.search(line):
                report(
                    idx,
                    "raw-randomness",
                    "unseeded entropy source; all randomness must flow from "
                    "a seeded bmf::Rng split serially before any fan-out",
                )

    # ---- raw-openmp ----------------------------------------------------------
    # Pragmas survive strip_comments_and_strings (they are code, not
    # comments), so a plain line scan is exact. Applies to every subsystem:
    # even util/ must not grow a second scheduler next to the pool.
    if sub is not None:
        for idx, line in enumerate(lines):
            if OMP_PRAGMA_RE.search(line):
                report(
                    idx,
                    "raw-openmp",
                    "OpenMP pragma bypasses the shared pool's gated_threads "
                    "discipline; fan out through bmf::parallel_for_threads",
                )

    # ---- ungated-fanout ------------------------------------------------------
    if in_determinism_scope:
        gated_fns, gated_vars = gated_names(lines)
        for idx, line in enumerate(lines):
            for m in FANOUT_RE.finditer(line):
                open_col = m.end() - 1
                arg = first_argument(lines, idx, open_col)
                callee = arg.split("(")[0].strip()
                if (
                    arg == "1"
                    or arg in gated_vars
                    or callee in gated_fns
                ):
                    continue
                report(
                    idx,
                    "ungated-fanout",
                    f"thread count '{arg}' does not come through "
                    "bmf::gated_threads; gate the fan-out on its work size",
                )

    # ---- publication-order ---------------------------------------------------
    # Implementation shared with tools/analyzer (shared_rules.py) — one rule,
    # two front ends.
    if sub in SERVICE_DIRS:
        for idx, message in shared_rules.check_publication_order(raw_lines, lines):
            report(idx, shared_rules.RULE_NAME, message)

    # ---- stale-suppression ---------------------------------------------------
    # Applies everywhere (any subsystem, fixtures included): a suppression
    # citing a rule neither tool knows is dead weight that hides nothing —
    # and usually means the rule was renamed out from under it.
    for idx, raw in enumerate(raw_lines):
        m = SUPPRESSION_PREFIX_RE.search(raw)
        if m:
            prefix, rule_name, rest = m.group(1), m.group(2).strip(), m.group(3)
            known = RULES if prefix == "determinism-lint" else ANALYZER_RULES
            if rule_name not in known:
                report(
                    idx,
                    "stale-suppression",
                    f"suppression '{prefix}: allow({rule_name})' names no "
                    f"known {prefix} rule; remove it or fix the rule name",
                )
            elif not re.match(r"\s*--\s*\S", rest):
                report(
                    idx,
                    "stale-suppression",
                    f"suppression '{prefix}: allow({rule_name})' lacks the "
                    "mandatory ' -- <reason>' tail (and is being ignored)",
                )
        if BARE_NOLINT_RE.search(raw):
            report(
                idx,
                "stale-suppression",
                "bare NOLINT swallows every clang-tidy check on the line; "
                "name the check, e.g. NOLINTNEXTLINE(concurrency-mt-unsafe)",
            )
    return findings


def collect_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _dirnames, filenames in os.walk(p):
                for name in sorted(filenames):
                    if name.endswith(CPP_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print(f"determinism_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(set(files))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="bit-identity determinism lint (see module docstring)"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: <repo>/src)",
    )
    parser.add_argument(
        "--use-libclang",
        choices=("auto", "no", "require"),
        default="auto",
        help="resolve unordered-iteration against the AST when the clang "
        "python bindings are importable (default: auto; regex is canonical)",
    )
    args = parser.parse_args(argv)
    paths = args.paths or [os.path.join(repo_root(), "src")]
    findings: list[Finding] = []
    for path in collect_files(paths):
        findings.extend(lint_file(path, args.use_libclang))
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
