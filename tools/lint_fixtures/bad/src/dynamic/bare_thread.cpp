// Lint fixture (known-bad): raw std::thread in engine code — unjoined on an
// exception path, invisible to the pool's nesting rules.
#include <thread>
#include <vector>

namespace bmf {

void rebuild_async(std::vector<int>& out) {
  std::thread worker([&] { out.push_back(1); });  // BAD: bare thread
  out.push_back(0);
  worker.join();
}

}  // namespace bmf
