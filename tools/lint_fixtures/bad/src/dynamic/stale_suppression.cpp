// Lint fixture (bad): stale-suppression. Three rotten suppressions — an
// allow() citing a rule the lint never defined, an allow() missing the
// mandatory reason tail (so it suppresses nothing while looking like it
// does), and a clang-tidy marker that names no check and so would swallow
// every diagnostic on its line. Fixture files are lint inputs, not build
// inputs.

namespace bmf {

inline int identity(int x) {
  // determinism-lint: allow(hash-iteration) -- rule was renamed long ago
  int a = x;
  // bmf-analyzer: allow(lock-order)
  int b = a;
  int c = b;  // NOLINT
  return c;
}

}  // namespace bmf
