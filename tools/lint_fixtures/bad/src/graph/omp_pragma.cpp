// Lint fixture (known-bad): an OpenMP pragma is a second scheduler next to
// the pool — its thread count and reduction order are outside the
// gated_threads discipline, so thread-count bit-identity is no longer
// governed in one place.
#include <cstdint>
#include <vector>

namespace bmf {

std::int64_t sum_all(const std::vector<std::int64_t>& xs) {
  std::int64_t total = 0;
#pragma omp parallel for reduction(+ : total)  // BAD: raw OpenMP
  for (std::size_t i = 0; i < xs.size(); ++i) total += xs[i];
  return total;
}

}  // namespace bmf
