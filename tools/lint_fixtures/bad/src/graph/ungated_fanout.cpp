// Lint fixture (known-bad): the fan-out takes the raw config thread count —
// tiny inputs pay the pool round-trip, and the gate discipline is broken.
#include <cstdint>
#include <vector>

#include "util/thread_pool.hpp"

namespace bmf {

void scale_all(int threads, std::vector<std::int64_t>& xs) {
  parallel_for_threads(threads,  // BAD: ungated
                       static_cast<std::int64_t>(xs.size()),
                       [&](std::int64_t i) { xs[static_cast<std::size_t>(i)] *= 2; });
}

}  // namespace bmf
