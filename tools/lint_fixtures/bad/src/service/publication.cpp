// Lint fixture (known-bad): publishes the epoch counter before the snapshot
// pointer and carries no proof markers — a reader acquiring the new epoch
// could re-fetch the stale snapshot.
#include <atomic>
#include <cstdint>
#include <memory>

namespace bmf {

struct Snapshot {};

struct Publisher {
  std::atomic<std::shared_ptr<const Snapshot>> latest_;
  std::atomic<std::int64_t> published_epoch_{0};

  void publish(std::shared_ptr<const Snapshot> snap, std::int64_t epoch) {
    published_epoch_.store(epoch, std::memory_order_release);  // BAD: first
    latest_.store(std::move(snap), std::memory_order_release);
  }
};

}  // namespace bmf
