// Lint fixture (known-bad): a rebuild-participation discovery sweep fans out
// over (structure x participant) slots with the raw config thread count —
// single-participant stores pay the pool round-trip and the gate discipline
// that keeps tiny sweeps serial is broken.
#include <cstdint>
#include <vector>

#include "util/thread_pool.hpp"

namespace bmf {

void sweep_slots(int threads, int num_structures, int participants,
                 std::vector<std::int64_t>& gathered) {
  const auto nslots =
      static_cast<std::int64_t>(num_structures) * participants;
  parallel_for_threads(threads,  // BAD: ungated
                       nslots, [&](std::int64_t slot) {
                         gathered[static_cast<std::size_t>(slot)] += 1;
                       });
}

}  // namespace bmf
