// Lint fixture (known-bad): hash-iteration order flows straight into the
// committed edge list. Fixtures are lint inputs, not build inputs.
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace bmf {

std::vector<std::pair<int, int>> commit_pairs(
    const std::vector<std::pair<std::int64_t, std::pair<int, int>>>& arcs) {
  std::unordered_map<std::int64_t, std::pair<int, int>> witness;
  for (const auto& [key, wx] : arcs) witness.emplace(key, wx);
  std::vector<std::pair<int, int>> committed;
  for (const auto& [key, wx] : witness) {  // BAD: stdlib-dependent order
    (void)key;
    committed.push_back(wx);
  }
  return committed;
}

}  // namespace bmf
