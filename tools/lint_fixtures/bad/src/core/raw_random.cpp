// Lint fixture (known-bad): three unseeded entropy sources in one file.
#include <cstdlib>
#include <ctime>
#include <random>

namespace bmf {

int pick_sample(int n) {
  std::random_device rd;  // BAD: nondeterministic seed
  std::srand(static_cast<unsigned>(time(nullptr)));  // BAD: wall clock + srand
  return (static_cast<int>(rd()) + rand()) % n;  // BAD: rand()
}

}  // namespace bmf
