// Lint fixture (good twin): all randomness flows from the seeded Rng, split
// serially before any parallel use.
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace bmf {

int pick_sample(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Rng> streams;
  for (int s = 0; s < 4; ++s) streams.push_back(rng.split());
  return static_cast<int>(streams[0].next() % static_cast<std::uint64_t>(n));
}

}  // namespace bmf
