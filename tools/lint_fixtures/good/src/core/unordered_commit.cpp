// Lint fixture (good twin): the unordered map is only a dedup index; its
// keys are collected and sorted before anything reaches committed state.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace bmf {

std::vector<std::pair<int, int>> commit_pairs(
    const std::vector<std::pair<std::int64_t, std::pair<int, int>>>& arcs) {
  std::unordered_map<std::int64_t, std::pair<int, int>> witness;
  for (const auto& [key, wx] : arcs) witness.emplace(key, wx);
  std::vector<std::int64_t> keys;
  keys.reserve(witness.size());
  for (const auto& [key, wx] : witness) {
    (void)wx;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<std::pair<int, int>> committed;
  for (const std::int64_t key : keys) committed.push_back(witness.at(key));
  return committed;
}

}  // namespace bmf
