// Lint fixture (good twin): the (structure x participant) slot fan-out is
// gated on the slot count, mirroring the discovery_thread_gate idiom in
// src/core/framework.cpp — single-participant stores with few structures
// stay serial, many-slot sweeps open up to the config thread count.
#include <cstdint>
#include <vector>

#include "util/thread_pool.hpp"

namespace bmf {
namespace {

constexpr std::int64_t kMinSlotsPerThread = 4;

int participation_thread_gate(std::int64_t nslots, int threads) {
  return gated_threads(nslots, kMinSlotsPerThread, threads);
}

}  // namespace

void sweep_slots(int threads, int num_structures, int participants,
                 std::vector<std::int64_t>& gathered) {
  const auto nslots =
      static_cast<std::int64_t>(num_structures) * participants;
  const int sweep_threads = participation_thread_gate(nslots, threads);
  parallel_for_threads(sweep_threads, nslots, [&](std::int64_t slot) {
    gathered[static_cast<std::size_t>(slot)] += 1;
  });
}

}  // namespace bmf
