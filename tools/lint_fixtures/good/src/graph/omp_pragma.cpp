// Lint fixture (good twin): the same reduction routed through the pool —
// per-slot partials combined in index order, thread count through the
// gated_threads size gate. Mentioning OpenMP in a comment (like this one)
// must not trip the rule; only a real `#pragma omp` line is a finding.
#include <cstdint>
#include <vector>

#include "util/thread_pool.hpp"

namespace bmf {
namespace {

constexpr std::int64_t kMinWork = 64;

}  // namespace

std::int64_t sum_all(int threads, const std::vector<std::int64_t>& xs) {
  const auto n = static_cast<std::int64_t>(xs.size());
  const int sum_threads = gated_threads(n, kMinWork, threads);
  return parallel_reduce_threads<std::int64_t>(
      sum_threads, n, 0,
      [&](std::int64_t i) { return xs[static_cast<std::size_t>(i)]; },
      [](std::int64_t a, std::int64_t b) { return a + b; });
}

}  // namespace bmf
