// Lint fixture (good twin): exercises every gated form the lint resolves —
// a direct gated_threads call, a variable assigned from it (across a line
// break), a local helper that returns it, and the literal 1.
#include <cstdint>
#include <vector>

#include "util/thread_pool.hpp"

namespace bmf {
namespace {

constexpr std::int64_t kMinWork = 64;

int scale_gate(std::int64_t work, int threads) {
  return gated_threads(work, kMinWork, threads);
}

}  // namespace

void scale_all(int threads, std::vector<std::int64_t>& xs) {
  const auto n = static_cast<std::int64_t>(xs.size());
  parallel_for_threads(gated_threads(n, kMinWork, threads), n,
                       [&](std::int64_t i) { xs[static_cast<std::size_t>(i)] *= 2; });
  const int scale_threads =
      scale_gate(n, threads);
  parallel_for_threads(scale_threads, n,
                       [&](std::int64_t i) { xs[static_cast<std::size_t>(i)] += 1; });
  parallel_for_threads(1, n,
                       [&](std::int64_t i) { xs[static_cast<std::size_t>(i)] -= 1; });
}

}  // namespace bmf
