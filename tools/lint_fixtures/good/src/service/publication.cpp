// Lint fixture (good twin): the documented publication sequence with its
// proof markers — snapshot pointer release-stored before the epoch counter.
#include <atomic>
#include <cstdint>
#include <memory>

namespace bmf {

struct Snapshot {};

struct Publisher {
  std::atomic<std::shared_ptr<const Snapshot>> latest_;
  std::atomic<std::int64_t> published_epoch_{0};

  void publish(std::shared_ptr<const Snapshot> snap, std::int64_t epoch) {
    // publication-order[1]
    latest_.store(std::move(snap), std::memory_order_release);
    // publication-order[2]
    published_epoch_.store(epoch, std::memory_order_release);
  }
};

}  // namespace bmf
