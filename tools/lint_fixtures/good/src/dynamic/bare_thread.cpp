// Lint fixture (good twin): the dedicated-thread pattern goes through the
// RAII wrapper, which joins on every exit path.
#include <vector>

#include "util/thread_pool.hpp"

namespace bmf {

void rebuild_async(std::vector<int>& out) {
  DedicatedThread worker([&] { out.push_back(1); });
  out.push_back(0);
  worker.join();
}

}  // namespace bmf
