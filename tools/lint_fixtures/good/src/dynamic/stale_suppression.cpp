// Lint fixture (good): the healthy twin of bad/src/dynamic/
// stale_suppression.cpp — every suppression cites a rule its tool defines,
// carries a reason, and the clang-tidy marker names its check. Fixture
// files are lint inputs, not build inputs.

namespace bmf {

inline int identity(int x) {
  // determinism-lint: allow(bare-thread) -- documents a reviewed exception
  int a = x;
  // bmf-analyzer: allow(lock-order) -- nesting reviewed; edge in manifest
  int b = a;
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- fixture demonstrates the form
  int c = b;
  return c;
}

}  // namespace bmf
