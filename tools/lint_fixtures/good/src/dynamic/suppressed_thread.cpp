// Lint fixture (good): a documented suppression — allow(<rule>) with a
// mandatory reason silences exactly one rule on one line.
#include <thread>

namespace bmf {

void measure_spawn_latency() {
  // determinism-lint: allow(bare-thread) -- measures raw spawn cost; joined
  std::thread probe([] {});
  probe.join();
}

}  // namespace bmf
